(* Runtime substrate: RNG determinism, fiber scheduler semantics, stalls,
   interrupts, signals, deadline, counters. *)

module Sched = Hpbrcu_runtime.Sched
module Signal = Hpbrcu_runtime.Signal
module Rng = Hpbrcu_runtime.Rng
module Counter = Hpbrcu_runtime.Counter
module Fault = Hpbrcu_runtime.Fault

let outcome : Signal.outcome Alcotest.testable =
  let pp ppf (o : Signal.outcome) =
    Fmt.string ppf
      (match o with
      | Signal.Delivered -> "Delivered"
      | Signal.Dead_receiver -> "Dead_receiver"
      | Signal.No_ack -> "No_ack")
  in
  Alcotest.testable pp ( = )

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Rng.next a = Rng.next b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:5 in
  let b = Rng.split a in
  let eq = ref 0 in
  for _ = 1 to 100 do
    if Rng.next a = Rng.next b then incr eq
  done;
  Alcotest.(check bool) "split independent" true (!eq < 5)

let test_rng_uniformish () =
  let r = Rng.create ~seed:11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int r 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      if abs (c - (n / 10)) > n / 50 then
        Alcotest.failf "bucket %d skewed: %d" i c)
    buckets

(* ---------------- fiber scheduler ---------------- *)

let test_fibers_run_all () =
  let n = 32 in
  let done_ = Array.make n false in
  Sched.run (Sched.Fibers { seed = 1; switch_every = 2 }) ~nthreads:n (fun tid ->
      done_.(tid) <- true);
  Array.iteri (fun i d -> if not d then Alcotest.failf "fiber %d did not run" i) done_

let test_fibers_self () =
  Sched.run (Sched.Fibers { seed = 2; switch_every = 1 }) ~nthreads:8 (fun tid ->
      Alcotest.(check int) "self" tid (Sched.self ()));
  Alcotest.(check int) "outside" (-1) (Sched.self ())

let test_fibers_interleave () =
  (* With switching at every yield, two fibers incrementing a shared
     counter must interleave (neither finishes first entirely). *)
  let log = ref [] in
  Sched.run (Sched.Fibers { seed = 3; switch_every = 1 }) ~nthreads:2 (fun tid ->
      for _ = 1 to 50 do
        log := tid :: !log;
        Sched.yield ()
      done);
  let l = !log in
  let switches = ref 0 in
  List.iteri
    (fun i x -> if i > 0 && x <> List.nth l (i - 1) then incr switches)
    l;
  Alcotest.(check bool) "interleaved" true (!switches > 10)

let test_fibers_deterministic () =
  let trace seed =
    let log = ref [] in
    Sched.run (Sched.Fibers { seed; switch_every = 2 }) ~nthreads:4 (fun tid ->
        for _ = 1 to 20 do
          log := tid :: !log;
          Sched.yield ()
        done);
    !log
  in
  Alcotest.(check (list int)) "same seed, same schedule" (trace 5) (trace 5);
  Alcotest.(check bool) "different seed, different schedule" true (trace 5 <> trace 6)

let test_fibers_stall_wakes () =
  let woke = ref false in
  Sched.run (Sched.Fibers { seed = 4; switch_every = 1 }) ~nthreads:2 (fun tid ->
      if tid = 0 then begin
        Sched.stall 50;
        woke := true
      end
      else for _ = 1 to 10 do Sched.yield () done);
  Alcotest.(check bool) "stalled fiber woke" true !woke

let test_fibers_exception_propagates () =
  let raised =
    try
      Sched.run (Sched.Fibers { seed = 5; switch_every = 1 }) ~nthreads:4 (fun tid ->
          if tid = 2 then failwith "boom"
          else for _ = 1 to 100 do Sched.yield () done);
      false
    with Failure m -> m = "boom"
  in
  Alcotest.(check bool) "worker failure re-raised" true raised

let test_interrupt_wakes_sleeper () =
  let t = ref max_int in
  Sched.run (Sched.Fibers { seed = 6; switch_every = 1 }) ~nthreads:2 (fun tid ->
      if tid = 0 then begin
        Sched.stall 1_000_000;
        t := Sched.tick ()
      end
      else begin
        for _ = 1 to 5 do Sched.yield () done;
        Sched.interrupt ~tid:0
      end);
  Alcotest.(check bool) "woke early (tick far below stall)" true (!t < 100_000)

let test_domains_run_all () =
  let n = 4 in
  let counts = Array.make n 0 in
  Sched.run Sched.Domains ~nthreads:n (fun tid ->
      for _ = 1 to 1000 do
        counts.(tid) <- counts.(tid) + 1
      done);
  Array.iter (fun c -> Alcotest.(check int) "completed" 1000 c) counts

(* ---------------- signals ---------------- *)

let test_signal_delivery_fiber () =
  let box = Signal.make () in
  let handled = ref 0 in
  Sched.run (Sched.Fibers { seed = 7; switch_every = 1 }) ~nthreads:2 (fun tid ->
      if tid = 0 then begin
        Signal.attach box;
        (* poll until delivered *)
        while !handled = 0 do
          Signal.poll box ~handler:(fun () -> incr handled);
          Sched.yield ()
        done
      end
      else
        ignore (Signal.send box ~is_out:(fun () -> false) : Signal.outcome));
  Alcotest.(check int) "handler ran once" 1 !handled

let test_signal_out_receiver_releases_sender () =
  let box = Signal.make () in
  (* Receiver never polls; sender must still return because is_out. *)
  let o = ref Signal.No_ack in
  Sched.run (Sched.Fibers { seed = 8; switch_every = 1 }) ~nthreads:1 (fun _ ->
      o := Signal.send box ~is_out:(fun () -> true));
  Alcotest.(check int) "sent" 1 (Signal.sent box);
  Alcotest.check outcome "out receiver = delivered" Signal.Delivered !o

let test_signal_consume_quietly () =
  let box = Signal.make () in
  Sched.run (Sched.Fibers { seed = 9; switch_every = 1 }) ~nthreads:2 (fun tid ->
      if tid = 0 then begin
        Signal.attach box;
        for _ = 1 to 20 do Sched.yield () done;
        Signal.consume_quietly box;
        (* After a quiet consume, no handler must fire. *)
        Signal.poll box ~handler:(fun () -> Alcotest.fail "handler after consume")
      end
      else
        ignore (Signal.send box ~is_out:(fun () -> false) : Signal.outcome))

(* Double delivery before any poll coalesces on the single pending flag:
   exactly one handler run, like POSIX signals of one signo. *)
let test_signal_double_send_coalesces () =
  let box = Signal.make () in
  let handled = ref 0 in
  Sched.run (Sched.Fibers { seed = 12; switch_every = 1 }) ~nthreads:2 (fun tid ->
      if tid = 0 then begin
        Signal.attach box;
        (* Stay away from polls until both sends have landed. *)
        for _ = 1 to 40 do Sched.yield () done;
        Signal.poll box ~handler:(fun () -> incr handled);
        Signal.poll box ~handler:(fun () -> incr handled)
      end
      else begin
        ignore (Signal.send box ~is_out:(fun () -> false) : Signal.outcome);
        ignore (Signal.send box ~is_out:(fun () -> false) : Signal.outcome)
      end);
  Alcotest.(check int) "two sends recorded" 2 (Signal.sent box);
  Alcotest.(check int) "one coalesced delivery" 1 !handled

(* A crashed receiver can never ack: send must return Dead_receiver
   instead of hanging (the ESRCH escape of DESIGN.md §8). *)
let test_signal_dead_receiver () =
  Fault.install
    {
      Fault.label = "crash-t0";
      rules =
        [
          {
            Fault.site = Fault.Yield;
            tid = 0;
            start = 5;
            period = 0;
            action = Fault.Crash;
          };
        ];
    };
  let box = Signal.make () in
  let o = ref Signal.Delivered in
  Sched.run (Sched.Fibers { seed = 13; switch_every = 1 }) ~nthreads:2 (fun tid ->
      if tid = 0 then begin
        Signal.attach box;
        (* Crashes at its 5th yield, well before any poll. *)
        for _ = 1 to 1000 do
          Sched.yield ()
        done
      end
      else begin
        (* Give the victim time to crash, then signal it. *)
        for _ = 1 to 50 do
          Sched.yield_now ()
        done;
        o := Signal.send box ~is_out:(fun () -> false)
      end);
  Fault.clear ();
  Alcotest.(check int) "one crash" 1 (Sched.crashed_count ());
  Alcotest.check outcome "dead receiver detected" Signal.Dead_receiver !o

(* A live receiver that never polls (and is not out) must produce No_ack
   within the bounded wait, not hang the sender forever. *)
let test_signal_no_ack_bounded () =
  (* Any active plan disables the fiber-mode post-and-return shortcut, so
     the sender takes the verified bounded wait.  The rule below injects
     nothing (start is far beyond the run's yield count). *)
  Fault.install
    {
      Fault.label = "armed-but-idle";
      rules =
        [
          {
            Fault.site = Fault.Yield;
            tid = -1;
            start = max_int;
            period = 0;
            action = Fault.Stall 1;
          };
        ];
    };
  let box = Signal.make () in
  let o = ref Signal.Delivered in
  Sched.run (Sched.Fibers { seed = 14; switch_every = 1 }) ~nthreads:2 (fun tid ->
      if tid = 0 then begin
        Signal.attach box;
        (* Alive, in a critical section, and never polling: the worst
           case short of a crash. *)
        for _ = 1 to 20_000 do
          Sched.yield ()
        done
      end
      else o := Signal.send box ~is_out:(fun () -> false));
  Fault.clear ();
  Alcotest.check outcome "bounded wait expired" Signal.No_ack !o

(* Dropped delivery: the pending flag is never posted, the receiver's
   handler never runs, and the sender learns it got no ack. *)
let test_signal_drop_fault () =
  Fault.install
    {
      Fault.label = "drop-all";
      rules =
        [
          {
            Fault.site = Fault.Signal_send;
            tid = -1;
            start = 0;
            period = 1;
            action = Fault.Drop_signal;
          };
        ];
    };
  let box = Signal.make () in
  let handled = ref 0 in
  let o = ref Signal.Delivered in
  Sched.run (Sched.Fibers { seed = 15; switch_every = 1 }) ~nthreads:2 (fun tid ->
      if tid = 0 then begin
        Signal.attach box;
        for _ = 1 to 10_000 do
          Signal.poll box ~handler:(fun () -> incr handled);
          Sched.yield ()
        done
      end
      else o := Signal.send box ~is_out:(fun () -> false));
  let injected = Fault.injected () in
  Fault.clear ();
  Alcotest.(check int) "drop recorded" 1 injected.Fault.drops;
  Alcotest.(check int) "handler never ran" 0 !handled;
  Alcotest.check outcome "sender saw no ack" Signal.No_ack !o

(* ---------------- faults ---------------- *)

(* An injected crash freezes the fiber: code after the crash point never
   runs, the rest of the run completes, and the crash registry knows. *)
let test_fault_crash_freezes_fiber () =
  Fault.install
    {
      Fault.label = "crash-t1";
      rules =
        [
          {
            Fault.site = Fault.Yield;
            tid = 1;
            start = 10;
            period = 0;
            action = Fault.Crash;
          };
        ];
    };
  let progressed = Array.make 3 0 in
  let after_crash = ref false in
  Sched.run (Sched.Fibers { seed = 21; switch_every = 1 }) ~nthreads:3 (fun tid ->
      for _ = 1 to 100 do
        progressed.(tid) <- progressed.(tid) + 1;
        Sched.yield ()
      done;
      if tid = 1 then after_crash := true);
  let injected = Fault.injected () in
  Fault.clear ();
  Alcotest.(check int) "one crash injected" 1 injected.Fault.crashes;
  Alcotest.(check bool) "victim is registered crashed" true (Sched.is_crashed 1);
  Alcotest.(check bool) "victim stopped early" true (progressed.(1) < 100);
  Alcotest.(check bool) "victim never resumed" false !after_crash;
  Alcotest.(check int) "survivor 0 finished" 100 progressed.(0);
  Alcotest.(check int) "survivor 2 finished" 100 progressed.(2)

(* Injected stalls follow the rule's deterministic schedule and are
   reproducible: same seed, same plan, same progress log. *)
let test_fault_stall_deterministic () =
  let run () =
    Fault.install
      {
        Fault.label = "stall-storm";
        rules =
          [
            {
              Fault.site = Fault.Yield;
              tid = -1;
              start = 13;
              period = 29;
              action = Fault.Stall 97;
            };
          ];
      };
    let log = ref [] in
    Sched.run (Sched.Fibers { seed = 22; switch_every = 2 }) ~nthreads:4
      (fun tid ->
        for _ = 1 to 50 do
          log := (tid, Sched.tick ()) :: !log;
          Sched.yield ()
        done);
    let injected = Fault.injected () in
    Fault.clear ();
    (!log, injected.Fault.stalls)
  in
  let l1, s1 = run () and l2, s2 = run () in
  Alcotest.(check bool) "stalls were injected" true (s1 > 0);
  Alcotest.(check int) "same stall count" s1 s2;
  Alcotest.(check (list (pair int int))) "same progress log" l1 l2

(* ---------------- deadline ---------------- *)

let test_deadline_aborts_spin () =
  Sched.set_deadline (Unix.gettimeofday () +. 0.05);
  let aborted =
    try
      Sched.run (Sched.Fibers { seed = 10; switch_every = 1 }) ~nthreads:1 (fun _ ->
          while true do
            Sched.yield ()
          done);
      false
    with Sched.Deadline -> true
  in
  Sched.clear_deadline ();
  Alcotest.(check bool) "deadline fired" true aborted

(* Satellite: fiber-mode deadlines are virtual-tick-based, so the same
   seed aborts at exactly the same virtual tick on every run. *)
let test_tick_deadline_deterministic () =
  let abort_tick () =
    Sched.set_tick_deadline 5_000;
    let t = ref 0 in
    (try
       Sched.run (Sched.Fibers { seed = 23; switch_every = 2 }) ~nthreads:4
         (fun _ ->
           while true do
             t := Sched.tick ();
             Sched.yield ()
           done)
     with Sched.Deadline -> ());
    Sched.clear_tick_deadline ();
    !t
  in
  let a = abort_tick () and b = abort_tick () in
  Alcotest.(check bool) "aborted near the armed tick" true
    (a >= 4_990 && a <= 5_000);
  Alcotest.(check int) "same abort tick on replay" a b

(* ---------------- counters ---------------- *)

let test_counter_peak () =
  let c = Counter.make () in
  Counter.incr c;
  Counter.incr c;
  Counter.decr c;
  Counter.incr c;
  Counter.incr c;
  Alcotest.(check int) "value" 3 (Counter.get c);
  Alcotest.(check int) "peak" 3 (Counter.peak c);
  Counter.decr c;
  Counter.decr c;
  Alcotest.(check int) "peak survives decr" 3 (Counter.peak c);
  Counter.reset_peak c;
  Alcotest.(check int) "peak rearmed" 1 (Counter.peak c)

let test_counter_concurrent () =
  let c = Counter.make () in
  Sched.run (Sched.Fibers { seed = 11; switch_every = 1 }) ~nthreads:8 (fun _ ->
      for _ = 1 to 100 do
        Counter.incr c;
        Sched.yield ();
        Counter.decr c
      done);
  Alcotest.(check int) "drains to zero" 0 (Counter.get c);
  Alcotest.(check bool) "peak positive" true (Counter.peak c >= 1)

let () =
  Alcotest.run "runtime"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed-sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "uniform" `Quick test_rng_uniformish;
        ] );
      ( "fibers",
        [
          Alcotest.test_case "run-all" `Quick test_fibers_run_all;
          Alcotest.test_case "self" `Quick test_fibers_self;
          Alcotest.test_case "interleave" `Quick test_fibers_interleave;
          Alcotest.test_case "deterministic" `Quick test_fibers_deterministic;
          Alcotest.test_case "stall-wakes" `Quick test_fibers_stall_wakes;
          Alcotest.test_case "exception" `Quick test_fibers_exception_propagates;
          Alcotest.test_case "interrupt" `Quick test_interrupt_wakes_sleeper;
          Alcotest.test_case "domains" `Quick test_domains_run_all;
        ] );
      ( "signals",
        [
          Alcotest.test_case "delivery" `Quick test_signal_delivery_fiber;
          Alcotest.test_case "out-release" `Quick test_signal_out_receiver_releases_sender;
          Alcotest.test_case "consume-quietly" `Quick test_signal_consume_quietly;
          Alcotest.test_case "double-send-coalesces" `Quick
            test_signal_double_send_coalesces;
          Alcotest.test_case "dead-receiver" `Quick test_signal_dead_receiver;
          Alcotest.test_case "no-ack-bounded" `Quick test_signal_no_ack_bounded;
          Alcotest.test_case "drop-fault" `Quick test_signal_drop_fault;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crash-freezes-fiber" `Quick
            test_fault_crash_freezes_fiber;
          Alcotest.test_case "stall-deterministic" `Quick
            test_fault_stall_deterministic;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "aborts-spin" `Quick test_deadline_aborts_spin;
          Alcotest.test_case "tick-deterministic" `Quick
            test_tick_deadline_deterministic;
        ] );
      ( "counter",
        [
          Alcotest.test_case "peak" `Quick test_counter_peak;
          Alcotest.test_case "concurrent" `Quick test_counter_concurrent;
        ] );
    ]
