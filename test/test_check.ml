(* The hunt harness (lib/check, DESIGN.md §11): schedule recording and
   replay, the safety oracles, the shrinker's contract, repro artifacts,
   and the mutation-testing gate that keeps the whole thing honest. *)

module Fault = Hpbrcu_runtime.Fault
module Alloc = Hpbrcu_alloc.Alloc
module Registry = Hpbrcu_schemes.Registry
module Chaos = Hpbrcu_workload.Chaos
module Schedule = Hpbrcu_check.Schedule
module Oracle = Hpbrcu_check.Oracle
module Runner = Hpbrcu_check.Runner
module Shrink = Hpbrcu_check.Shrink
module Repro = Hpbrcu_check.Repro
module Hunt = Hpbrcu_check.Hunt

(* Dune runs tests from _build/default/test; the checked-in corpus is a
   declared dep one level up. *)
let repro_path name =
  List.find Sys.file_exists
    [
      Filename.concat "repros" name;
      Filename.concat (Filename.concat ".." "repros") name;
      Filename.concat (Filename.concat (Filename.concat ".." "..") "repros") name;
    ]

let corpus = [ "nomask-leak-small.repro"; "nomask-leak-fuzzed.repro"; "nodb-uaf.repro" ]

(* ------------------------------------------------------------------ *)
(* Satellite: Fault plan serialization                                 *)
(* ------------------------------------------------------------------ *)

let all_actions_plan =
  {
    Fault.label = "roundtrip";
    rules =
      [
        { Fault.site = Yield; tid = -1; start = 40; period = 7; action = Stall 300 };
        { Fault.site = Yield; tid = 2; start = 800; period = 0; action = Crash };
        { Fault.site = Signal_send; tid = 0; start = 2; period = 5; action = Drop_signal };
        { Fault.site = Signal_send; tid = -1; start = 0; period = 3; action = Delay_signal 90 };
        { Fault.site = Pool_acquire; tid = 1; start = 10; period = 2; action = Exhaust_pool };
      ];
  }

let test_fault_roundtrip () =
  let p = all_actions_plan in
  Alcotest.(check bool) "string roundtrip" true (Fault.of_string (Fault.to_string p) = p);
  let tmp = Filename.temp_file "plan" ".fault" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Fault.to_file tmp p;
      Alcotest.(check bool) "file roundtrip" true (Fault.of_file tmp = p));
  Alcotest.(check bool) "empty plan roundtrips" true
    (Fault.of_string (Fault.to_string Fault.no_faults) = Fault.no_faults)

let test_oracle_roundtrip () =
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Oracle.tag f ^ " roundtrips")
        true
        (Oracle.of_string (Oracle.to_string f) = f))
    [
      Oracle.Uaf { count = 3; poisoned = 2 };
      Oracle.Double_retire 1;
      Oracle.Double_reclaim 4;
      Oracle.Bound_exceeded { peak = 99; bound = 64 };
      Oracle.Leak { lost = 2 };
      Oracle.Lost_signal { pending = 1 };
    ]

(* ------------------------------------------------------------------ *)
(* Satellite: typed registry exhaustion                                *)
(* ------------------------------------------------------------------ *)

let test_registry_exhausted () =
  let t = Registry.Shields.create () in
  let shields =
    Array.init Registry.Shields.max_shields (fun _ -> Registry.Shields.alloc t)
  in
  (match Registry.Shields.alloc t with
  | exception Registry.Exhausted _ -> ()
  | _ -> Alcotest.fail "expected typed Exhausted");
  Alcotest.(check bool) "try_alloc drained" true (Registry.Shields.try_alloc t = None);
  Registry.Shields.release shields.(0);
  Alcotest.(check bool) "release frees a slot" true
    (Registry.Shields.try_alloc t <> None);
  let pt = Registry.Participants.create () in
  for i = 1 to Registry.Participants.capacity do
    ignore (Registry.Participants.add pt i : int)
  done;
  (match Registry.Participants.add pt 0 with
  | exception Registry.Exhausted _ -> ()
  | _ -> Alcotest.fail "expected typed Exhausted");
  Alcotest.(check bool) "try_add drained" true
    (Registry.Participants.try_add pt 0 = None)

(* ------------------------------------------------------------------ *)
(* Satellite: allocator poisoning                                      *)
(* ------------------------------------------------------------------ *)

let test_poisoning () =
  Alloc.reset ();
  Alloc.set_strict false;
  Alloc.set_poisoning true;
  Fun.protect
    ~finally:(fun () ->
      Alloc.set_poisoning false;
      Alloc.set_strict true;
      Alloc.reset ())
    (fun () ->
      let b = Alloc.block () in
      Alloc.retire b;
      Alloc.reclaim b;
      Alloc.check_access b;
      let st = Alloc.stats () in
      Alcotest.(check int) "uaf counted" 1 st.Alloc.uaf;
      Alcotest.(check int) "poison stamp proves the incarnation" 1
        st.Alloc.poisoned_reads;
      (* An abandoned block is poisoned too. *)
      let b2 = Alloc.block () in
      Alloc.abandon b2;
      Alloc.check_access b2;
      Alcotest.(check int) "abandon poisons" 2 (Alloc.stats ()).Alloc.poisoned_reads)

(* ------------------------------------------------------------------ *)
(* Schedule recording / replay / odometer                              *)
(* ------------------------------------------------------------------ *)

let small_case scheme seed =
  {
    Runner.scheme;
    seed;
    p =
      {
        Chaos.key_range = 32;
        hot_width = 4;
        readers = 1;
        writers = 2;
        reader_ops = 10;
        writer_ops = 40;
        tick_budget = 500_000;
      };
    plan = Fault.no_faults;
    spec = Schedule.Rand;
  }

let test_run_determinism () =
  let case = small_case "HP-BRCU" 11 in
  let o1, l1 = Runner.run ~traced:true case in
  let o2, l2 = Runner.run ~traced:true case in
  Alcotest.(check bool) "same outcome" true (o1 = o2);
  Alcotest.(check bool) "byte-identical logs" true (l1 = l2);
  Alcotest.(check bool) "branching decisions recorded" true
    (Array.length o1.Runner.recording.Schedule.decisions > 0);
  (* Pinning the schedule replays the exact run: same decisions, same log. *)
  let pinned = Runner.pin case o1 in
  let o3, l3 = Runner.run ~traced:true pinned in
  Alcotest.(check bool) "pinned replay reproduces the log" true (l1 = l3);
  Alcotest.(check bool) "pinned replay reproduces the decisions" true
    (Schedule.prefix_of o1.Runner.recording = Schedule.prefix_of o3.Runner.recording)

let test_dfs_odometer () =
  let r d =
    {
      Schedule.decisions =
        Array.of_list (List.map (fun (c, a) -> { Schedule.choice = c; arity = a }) d);
      overflowed = false;
    }
  in
  (* Deepest decision with an unexplored sibling advances; suffix drops. *)
  Alcotest.(check bool) "advance deepest" true
    (Schedule.next_dfs_prefix ~depth:3 (r [ (0, 2); (1, 3); (0, 2) ]) [||]
    = Some [| 0; 1; 1 |]);
  (* Saturated decisions backtrack. *)
  Alcotest.(check bool) "backtrack" true
    (Schedule.next_dfs_prefix ~depth:3 (r [ (0, 2); (2, 3); (1, 2) ]) [| 0; 2; 1 |]
    = Some [| 1 |]);
  (* Fully saturated subtree is exhausted. *)
  Alcotest.(check bool) "exhausted" true
    (Schedule.next_dfs_prefix ~depth:2 (r [ (1, 2); (2, 3); (0, 9) ]) [| 1; 2 |]
    = None);
  (* The depth bound ignores deeper decisions. *)
  Alcotest.(check bool) "depth bound" true
    (Schedule.next_dfs_prefix ~depth:1 (r [ (1, 2); (0, 3) ]) [| 1 |] = None)

(* ------------------------------------------------------------------ *)
(* Repro corpus: every checked-in counterexample must still convict    *)
(* ------------------------------------------------------------------ *)

let test_corpus () =
  List.iter
    (fun name ->
      let r = Repro.of_file (repro_path name) in
      (* The artifact text itself roundtrips. *)
      Alcotest.(check bool) (name ^ " parses back") true
        (Repro.of_string (Repro.to_string r) = r);
      let v = Repro.replay r in
      Alcotest.(check bool) (name ^ " reproduced") true v.Repro.reproduced;
      Alcotest.(check bool) (name ^ " deterministic") true v.Repro.deterministic;
      Alcotest.(check bool) (name ^ " no trace divergence") true
        (v.Repro.divergence = None))
    corpus

(* ------------------------------------------------------------------ *)
(* Shrinker contract                                                   *)
(* ------------------------------------------------------------------ *)

let test_shrinker () =
  let r = Repro.of_file (repro_path "nomask-leak-small.repro") in
  let case = r.Repro.case in
  let outcome, _ = Runner.run case in
  Alcotest.(check bool) "corpus case fails" true (Runner.failed outcome);
  let s1 = Shrink.shrink ~budget:80 case outcome in
  let s2 = Shrink.shrink ~budget:80 case outcome in
  (* Deterministic: same case, same budget, same minimum. *)
  Alcotest.(check bool) "shrinking is deterministic" true
    (s1.Shrink.case = s2.Shrink.case);
  (* The minimum still fails with the original finding kind. *)
  let kinds o = List.map Oracle.tag o.Runner.findings in
  Alcotest.(check bool) "shrunk case still fails" true
    (List.exists (fun t -> List.mem t (kinds outcome)) (kinds s1.Shrink.outcome));
  let o', _ = Runner.run s1.Shrink.case in
  Alcotest.(check bool) "shrunk case fails on re-run" true
    (List.exists (fun t -> List.mem t (kinds outcome)) (kinds o'));
  (* And replays byte-identically, like any repro. *)
  let v =
    Repro.replay
      { Repro.case = s1.Shrink.case; finding = List.hd s1.Shrink.outcome.Runner.findings }
  in
  Alcotest.(check bool) "shrunk repro deterministic" true
    (v.Repro.reproduced && v.Repro.deterministic)

(* ------------------------------------------------------------------ *)
(* The mutation gate, in miniature                                     *)
(* ------------------------------------------------------------------ *)

let quiet = ignore

let test_mutants_convicted () =
  (* Budgets sized ~2.5x the observed conviction depth of each pairing
     (rand finds the nomask leak, pct the nodb use-after-free). *)
  let nomask =
    Hunt.run
      { (Hunt.default_config ~scheme:"HP-BRCU!nomask" ~strategy:`Rand ~seed:2 ~runs:60)
        with Hunt.shrink_budget = 60; log = quiet }
  in
  (match nomask.Hunt.finding with
  | None -> Alcotest.fail "nomask mutant not convicted"
  | Some f ->
      Alcotest.(check string) "nomask convicted of the leak" "leak"
        (Oracle.tag f.Hunt.repro.Repro.finding);
      let v = Repro.replay f.Hunt.repro in
      Alcotest.(check bool) "nomask repro replays" true
        (v.Repro.reproduced && v.Repro.deterministic));
  let nodb =
    Hunt.run
      { (Hunt.default_config ~scheme:"HP-BRCU!nodb"
           ~strategy:(Hunt.strategy_of_string "pct") ~seed:1 ~runs:50)
        with Hunt.shrink_budget = 60; log = quiet }
  in
  match nodb.Hunt.finding with
  | None -> Alcotest.fail "nodb mutant not convicted"
  | Some f ->
      Alcotest.(check string) "nodb convicted of the use-after-free" "uaf"
        (Oracle.tag f.Hunt.repro.Repro.finding)

let test_real_schemes_silent () =
  List.iter
    (fun scheme ->
      let r =
        Hunt.run
          { (Hunt.default_config ~scheme ~strategy:`Rand ~seed:1 ~runs:30) with
            Hunt.log = quiet }
      in
      Alcotest.(check bool) (scheme ^ " clean") true (Hunt.clean r))
    [ "RCU"; "HP-BRCU" ]

let test_dfs_strategy () =
  let r =
    Hunt.run
      { (Hunt.default_config ~scheme:"RCU" ~strategy:`Dfs ~seed:3 ~runs:120) with
        Hunt.log = quiet }
  in
  Alcotest.(check bool) "dfs finds nothing in RCU" true (Hunt.clean r);
  Alcotest.(check bool) "dfs ran" true (r.Hunt.cases_run > 1)

let () =
  Alcotest.run "check"
    [
      ( "serialization",
        [
          Alcotest.test_case "fault plans roundtrip" `Quick test_fault_roundtrip;
          Alcotest.test_case "oracle findings roundtrip" `Quick test_oracle_roundtrip;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "registry exhaustion is typed" `Quick
            test_registry_exhausted;
          Alcotest.test_case "poisoning classifies freed reads" `Quick
            test_poisoning;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "runs are pure functions of the case" `Quick
            test_run_determinism;
          Alcotest.test_case "dfs odometer" `Quick test_dfs_odometer;
        ] );
      ( "repros",
        [
          Alcotest.test_case "checked-in corpus reproduces" `Quick test_corpus;
          Alcotest.test_case "shrinker is deterministic and sound" `Quick
            test_shrinker;
        ] );
      ( "mutation-gate",
        [
          Alcotest.test_case "planted mutants convicted" `Quick
            test_mutants_convicted;
          Alcotest.test_case "real schemes stay silent" `Quick
            test_real_schemes_silent;
          Alcotest.test_case "bounded dfs explores and terminates" `Quick
            test_dfs_strategy;
        ] );
    ]
