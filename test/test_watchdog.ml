(* The self-healing layer: the watchdog escalation-ladder engine over
   scripted subjects, allocation admission (backpressure), crashed fibers
   inside Scoped RAII guards, and the KV-service cell end to end. *)

module Sched = Hpbrcu_runtime.Sched
module Fault = Hpbrcu_runtime.Fault
module W = Hpbrcu_runtime.Watchdog
module Alloc = Hpbrcu_alloc.Alloc
module Config = Hpbrcu_core.Config
module SI = Hpbrcu_core.Smr_intf
module Dom = SI.Dom
module Schemes = Hpbrcu_schemes.Schemes
module K = Hpbrcu_workload.Kvservice

let reset () =
  Schemes.reset_all ();
  Alloc.reset ();
  Alloc.Admission.clear_all ()

(* ------------------------------------------------------------------ *)
(* The ladder engine over scripted subjects                            *)
(* ------------------------------------------------------------------ *)

(* A subject whose probe is a script and whose actions append to a log:
   the ladder walk becomes a checkable string. *)
let scripted ?(recycle_ok = true) ?(with_recycle = true) ~probe log =
  let r () =
    log := "C" :: !log;
    recycle_ok
  in
  {
    W.label = "scripted";
    id = 7;
    probe;
    nudge = (fun () -> log := "N" :: !log);
    resend =
      (fun () ->
        log := "R" :: !log;
        false);
    quarantine =
      (fun () ->
        log := "Q" :: !log;
        3);
    recycle = (if with_recycle then Some r else None);
  }

let tight_cfg =
  {
    W.poll_every = 1;
    poll_ns = 50_000;
    unreclaimed_threshold = 10;
    lag_threshold = 0;
    no_ack_streak = 0;
    nudge_deadline = 2;
    resend_deadline = 2;
    quarantine_deadline = 1;
    backoff_base = 1;
    backoff_cap = 1;
    jitter = 0;
  }

let always_laggard () = { W.unreclaimed = 100; lag = 0; no_acks = 0 }

let test_ladder_order () =
  let log = ref [] in
  let t = W.create ~seed:1 tight_cfg [ scripted ~probe:always_laggard log ] in
  for _ = 1 to 7 do
    W.step t
  done;
  (* streak 1-2 nudge, 3-4 re-send (backoff 1), 5 quarantine, 6 recycle
     (succeeds, ladder resets), 7 nudge again. *)
  Alcotest.(check (list string))
    "ladder walk" [ "N"; "N"; "R"; "R"; "Q"; "C"; "N" ]
    (List.rev !log);
  let c = W.counts t in
  Alcotest.(check int) "nudges" 3 c.W.nudges;
  Alcotest.(check int) "resends" 2 c.W.resends;
  Alcotest.(check int) "quarantined (returned count)" 3 c.W.quarantined;
  Alcotest.(check int) "recycles" 1 c.W.recycles;
  Alcotest.(check string) "worst rung" "recycle" (W.level_name (W.worst_level t))

let test_deescalate_on_recovery () =
  let log = ref [] in
  let sick = ref true in
  let probe () =
    { W.unreclaimed = (if !sick then 100 else 0); lag = 0; no_acks = 0 }
  in
  let t = W.create ~seed:1 tight_cfg [ scripted ~probe log ] in
  for _ = 1 to 3 do
    W.step t
  done;
  Alcotest.(check (list string)) "escalated" [ "N"; "N"; "R" ] (List.rev !log);
  sick := false;
  for _ = 1 to 5 do
    W.step t
  done;
  Alcotest.(check (list string))
    "recovered: no further actions" [ "N"; "N"; "R" ] (List.rev !log);
  Alcotest.(check string) "worst rung remembered" "resend"
    (W.level_name (W.worst_level t));
  (* A relapse starts a fresh episode from the bottom rung. *)
  sick := true;
  W.step t;
  Alcotest.(check (list string))
    "relapse restarts at nudge" [ "N"; "N"; "R"; "N" ]
    (List.rev !log)

let test_no_recycle_caps_at_quarantine () =
  let log = ref [] in
  let t =
    W.create ~seed:1 tight_cfg
      [ scripted ~with_recycle:false ~probe:always_laggard log ]
  in
  for _ = 1 to 10 do
    W.step t
  done;
  Alcotest.(check string) "capped below recycle" "quarantine"
    (W.level_name (W.worst_level t));
  Alcotest.(check int) "no recycles" 0 (W.counts t).W.recycles

let test_deferred_recycle_retries () =
  let log = ref [] in
  let t =
    W.create ~seed:1 tight_cfg
      [ scripted ~recycle_ok:false ~probe:always_laggard log ]
  in
  for _ = 1 to 8 do
    W.step t
  done;
  (* Deferred recycles don't count and don't reset the ladder: the rung
     stays Recycle and retries every round. *)
  Alcotest.(check int) "no recycle counted" 0 (W.counts t).W.recycles;
  Alcotest.(check (list string))
    "recycle retried" [ "N"; "N"; "R"; "R"; "Q"; "C"; "C"; "C" ]
    (List.rev !log)

let test_same_seed_same_walk () =
  let walk seed =
    let log = ref [] in
    let cfg = { tight_cfg with W.jitter = 3; backoff_cap = 4 } in
    let t = W.create ~seed cfg [ scripted ~probe:always_laggard log ] in
    for _ = 1 to 25 do
      W.step t
    done;
    List.rev !log
  in
  Alcotest.(check (list string)) "same seed, same walk" (walk 42) (walk 42);
  Alcotest.(check bool)
    "jittered backoff actually used" true
    (List.length (walk 42) > 0)

(* ------------------------------------------------------------------ *)
(* Allocation admission (backpressure)                                 *)
(* ------------------------------------------------------------------ *)

let test_admission () =
  reset ();
  let o = Alloc.Owner.fresh ~label:"bp-test" in
  Alcotest.(check bool)
    "no limit: admitted" true
    (Alloc.Admission.admit ~owner:o () = Alloc.Admission.Admitted);
  Alloc.Admission.set_limit o 5;
  for _ = 1 to 9 do
    Alloc.Owner.on_retire o
  done;
  (* Over the limit and nothing reclaims: the bounded wait must give up
     with the typed outcome, not spin forever. *)
  (match Alloc.Admission.admit ~rounds:7 ~owner:o () with
  | Alloc.Admission.Admitted -> Alcotest.fail "must shed over the limit"
  | Alloc.Admission.Backpressure { owner; waited } ->
      Alcotest.(check int) "owner in the outcome" o owner;
      Alcotest.(check int) "bounded wait rounds" 7 waited);
  Alcotest.(check int) "one wait" 1 (Alloc.Admission.wait_count ());
  Alcotest.(check int) "one reject" 1 (Alloc.Admission.reject_count ());
  (* Reclamation catches up: admitted again. *)
  for _ = 1 to 6 do
    Alloc.Owner.on_reclaim o
  done;
  Alcotest.(check bool)
    "under the limit again" true
    (Alloc.Admission.admit ~owner:o () = Alloc.Admission.Admitted);
  (* Counters reset with the allocator; limits are configuration. *)
  Alloc.reset ();
  Alcotest.(check int) "waits reset" 0 (Alloc.Admission.wait_count ());
  Alcotest.(check int) "limit survives reset" 5 (Alloc.Admission.limit o);
  Alloc.Admission.clear_all ();
  Alcotest.(check int) "cleared" 0 (Alloc.Admission.limit o);
  Alloc.Owner.release o

(* ------------------------------------------------------------------ *)
(* Scoped guards vs crashed fibers                                     *)
(* ------------------------------------------------------------------ *)

(* A fiber that crashes inside [Scoped.with_session] never unwinds, so
   the guard cannot release — the handle must stay VISIBLE in the live
   census (a typed Domain_active on destroy), never a silent pin that
   force-destroy's leak accounting then loses. *)
let test_scoped_crash_mid_section () =
  reset ();
  Alloc.set_strict false;
  let module X = (val (Option.get (Schemes.find_impl "RCU")) : SI.SCHEME) in
  let module G = SI.Scoped (X) in
  let d = X.create ~label:"scoped-crash" Config.default in
  Fault.install
    {
      Fault.label = "crash-in-guard";
      rules =
        [ { Fault.site = Yield; tid = 0; start = 10; period = 0; action = Crash } ];
    };
  Sched.run
    (Sched.Fibers { seed = 5; switch_every = 1 })
    ~nthreads:2
    (fun tid ->
      if tid = 0 then
        G.with_session d (fun h ->
            G.with_op h (fun () ->
                G.with_crit h (fun () ->
                    for _ = 1 to 100 do
                      X.retire h (Alloc.block ());
                      (* The mediated switch point — where Yield-site
                         faults (the crash) are consulted. *)
                      Sched.yield ()
                    done)))
      else
        G.with_session d (fun h ->
            for _ = 1 to 20 do
              X.retire h (Alloc.block ());
              Sched.yield ()
            done));
  Fault.clear ();
  Alcotest.(check int) "one fiber crashed" 1 (Sched.crashed_count ());
  (* The survivor's guard released; the victim's could not and must be
     counted, not dropped. *)
  Alcotest.(check int) "crashed guard still in the census" 1
    (Dom.live_handles (X.dom d));
  (match X.destroy d with
  | () -> Alcotest.fail "destroy under a crashed guard must raise"
  | exception Dom.Domain_active { live; _ } ->
      Alcotest.(check int) "census names the pin" 1 live);
  (* Teardown under dead readers is the documented force path. *)
  X.destroy ~force:true d;
  (match X.register d with
  | _ -> Alcotest.fail "register after force-destroy must raise"
  | exception Dom.Destroyed _ -> ())

(* ------------------------------------------------------------------ *)
(* The KV service cell                                                 *)
(* ------------------------------------------------------------------ *)

let small =
  {
    K.default_params with
    K.clients = 3;
    requests = 400;
    keys = 128;
    shards = 2;
    budget = 120;
  }

let test_kv_smoke () =
  reset ();
  let r = K.run_one ~scheme:"RCU" ~plan:"none" small in
  Alcotest.(check bool) "SLO pass" true r.K.verdict.K.v_ok;
  Alcotest.(check int) "no crashes" 0 r.K.crashes;
  Alcotest.(check int) "no UAF" 0 r.K.uaf;
  Alcotest.(check bool) "requests served" true (r.K.served > 0)

let test_kv_deterministic () =
  reset ();
  let a = K.run_one ~scheme:"RCU" ~plan:"crash-reader" small in
  reset ();
  let b = K.run_one ~scheme:"RCU" ~plan:"crash-reader" small in
  Alcotest.(check int) "served equal" a.K.served b.K.served;
  Alcotest.(check int) "peak equal" a.K.peak b.K.peak;
  Alcotest.(check int) "recycles equal" a.K.recycles b.K.recycles;
  Alcotest.(check bool)
    "trace replay byte-identical" true
    (K.replay_identical ~scheme:"RCU" ~plan:"crash-reader" small)

let test_kv_crash_heals () =
  reset ();
  let r = K.run_one ~scheme:"RCU" ~plan:"crash-reader" small in
  Alcotest.(check int) "one crash" 1 r.K.crashes;
  Alcotest.(check int) "no UAF" 0 r.K.uaf;
  Alcotest.(check bool) "watermark within budget" true
    (r.K.peak <= small.K.budget)

(* ------------------------------------------------------------------ *)
(* The ladder on the Domains backend (DESIGN.md §16): rounds pace on   *)
(* real Clock ns (poll_ns), not simulator ticks                        *)
(* ------------------------------------------------------------------ *)

(* Same walk as test_ladder_order, but the supervisor runs inside a real
   domain via [W.run]: deadlines expire on wall-clock rounds.  The probe
   counts rounds so [until] can stop the walk at exactly seven. *)
let test_domains_ladder_walk () =
  let log = ref [] in
  let rounds = Atomic.make 0 in
  let probe () =
    Atomic.incr rounds;
    always_laggard ()
  in
  let t = W.create ~seed:1 tight_cfg [ scripted ~probe log ] in
  Sched.run Sched.Domains ~nthreads:1 (fun _ ->
      W.run t ~until:(fun () -> Atomic.get rounds >= 7));
  Alcotest.(check (list string))
    "wall-paced ladder walk" [ "N"; "N"; "R"; "R"; "Q"; "C"; "N" ]
    (List.rev !log);
  Alcotest.(check int) "recycles" 1 (W.counts t).W.recycles

let test_domains_deescalate () =
  let log = ref [] in
  let sick = Atomic.make true in
  let rounds = Atomic.make 0 in
  let probe () =
    Atomic.incr rounds;
    {
      W.unreclaimed = (if Atomic.get sick then 100 else 0);
      lag = 0;
      no_acks = 0;
    }
  in
  let t = W.create ~seed:1 tight_cfg [ scripted ~probe log ] in
  Sched.run Sched.Domains ~nthreads:1 (fun _ ->
      W.run t ~until:(fun () ->
          (* Recover the subject after the third wall round. *)
          if Atomic.get rounds >= 3 then Atomic.set sick false;
          Atomic.get rounds >= 8));
  Alcotest.(check (list string))
    "escalated then silent after recovery" [ "N"; "N"; "R" ]
    (List.rev !log);
  Alcotest.(check string) "worst rung remembered" "resend"
    (W.level_name (W.worst_level t))

(* A recycle must be deferred while a live domain still holds a session
   (the kvservice g_opens race): the supervisor keeps retrying every
   round and only wins once the holder releases. *)
let test_domains_recycle_waits_for_holder () =
  let held = Atomic.make true in
  let deferred = Atomic.make 0 in
  let recycled = Atomic.make 0 in
  let sub =
    {
      W.label = "held";
      id = 1;
      probe = always_laggard;
      nudge = ignore;
      resend = (fun () -> false);
      quarantine = (fun () -> 0);
      recycle =
        Some
          (fun () ->
            if Atomic.get held then (
              Atomic.incr deferred;
              false)
            else (
              Atomic.incr recycled;
              true));
    }
  in
  let t = W.create ~seed:1 tight_cfg [ sub ] in
  Sched.run Sched.Domains ~nthreads:2 (fun i ->
      if i = 0 then W.run t ~until:(fun () -> Atomic.get recycled >= 1)
      else begin
        (* The holder: sits in its "session" until the supervisor has
           been forced to defer at least once, then releases it. *)
        while Atomic.get deferred < 1 do
          Hpbrcu_runtime.Clock.sleep_ns 20_000
        done;
        Atomic.set held false
      end);
  Alcotest.(check bool) "deferred at least once" true (Atomic.get deferred >= 1);
  Alcotest.(check int) "recycled once released" 1 (Atomic.get recycled);
  Alcotest.(check int) "deferred recycles not counted" 1 (W.counts t).W.recycles

(* The service cell end to end on real domains: a worker domain parked
   forever inside its critical section, healed by a wall-paced recycle.
   The verdicts are statistical (no byte-replay): exactly one crash,
   zero UAFs, at least one recycle, inside the wall budget. *)
let test_kv_domains_crash_heals () =
  reset ();
  let p = { small with K.requests = 3000 } in
  let r = K.run_one ~scheme:"RCU" ~plan:"crash-reader" ~substrate:`Domains p in
  Alcotest.(check int) "one crash" 1 r.K.crashes;
  Alcotest.(check int) "no UAF" 0 r.K.uaf;
  Alcotest.(check bool) "inside the wall budget" false r.K.deadline_hit;
  Alcotest.(check bool) "requests served" true (r.K.served > 0);
  Alcotest.(check bool) "healed by recycle" true (r.K.recycles >= 1);
  Alcotest.(check string) "latencies in ns" "ns" r.K.lat_unit

let () =
  Alcotest.run "watchdog"
    [
      ( "ladder",
        [
          Alcotest.test_case "escalation-order" `Quick test_ladder_order;
          Alcotest.test_case "de-escalate-on-recovery" `Quick
            test_deescalate_on_recovery;
          Alcotest.test_case "no-recycle-caps" `Quick
            test_no_recycle_caps_at_quarantine;
          Alcotest.test_case "deferred-recycle-retries" `Quick
            test_deferred_recycle_retries;
          Alcotest.test_case "seed-deterministic" `Quick test_same_seed_same_walk;
        ] );
      ("admission", [ Alcotest.test_case "backpressure" `Quick test_admission ]);
      ( "scoped",
        [
          Alcotest.test_case "crash-mid-section" `Quick
            test_scoped_crash_mid_section;
        ] );
      ( "kvservice",
        [
          Alcotest.test_case "smoke" `Quick test_kv_smoke;
          Alcotest.test_case "deterministic" `Quick test_kv_deterministic;
          Alcotest.test_case "crash-heals" `Quick test_kv_crash_heals;
        ] );
      ( "domains",
        [
          Alcotest.test_case "wall-paced ladder" `Quick test_domains_ladder_walk;
          Alcotest.test_case "de-escalate on recovery" `Quick
            test_domains_deescalate;
          Alcotest.test_case "recycle waits for holder" `Quick
            test_domains_recycle_waits_for_holder;
          Alcotest.test_case "kv crash-heals on domains" `Quick
            test_kv_domains_crash_heals;
        ] );
    ]
