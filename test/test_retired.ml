(* Property tests for the allocation-free reclamation containers
   (DESIGN.md §9): the array-backed [Retired] batch against a plain-list
   model over random push / reclaim_where / drain / transfer
   interleavings, and [Idset]'s radix sort + binary search against the
   Stdlib sort / linear membership they replace. *)

module Q = QCheck
module Alloc = Hpbrcu_alloc.Alloc
module Block = Hpbrcu_alloc.Block
module Retired = Hpbrcu_core.Retired
module Idset = Hpbrcu_core.Idset

(* ---------------- Retired vs list model ---------------- *)

type op =
  | Push of int * bool * int  (* stamp, attach finalizer?, patch count *)
  | Reclaim_le of int  (* reclaim entries with stamp <= k *)
  | Reclaim_all
  | Drain
  | Transfer  (* move everything into a second batch and back *)

let op_gen =
  Q.Gen.(
    frequency
      [
        (6, map3 (fun s f p -> Push (s, f, p)) (int_bound 7) bool (int_bound 2));
        (2, map (fun k -> Reclaim_le k) (int_bound 7));
        (1, return Reclaim_all);
        (1, return Drain);
        (1, return Transfer);
      ])

let pp_op = function
  | Push (s, f, p) -> Printf.sprintf "P(%d,%b,%d)" s f p
  | Reclaim_le k -> Printf.sprintf "R<=%d" k
  | Reclaim_all -> "R*"
  | Drain -> "D"
  | Transfer -> "T"

let ops_arb =
  Q.make
    ~print:(fun ops -> String.concat ";" (List.map pp_op ops))
    Q.Gen.(list_size (int_range 0 200) op_gen)

(* Model entry: block, stamp, patch-list length, finalizer id (-1 = none). *)
type mentry = { mblk : Block.t; mstamp : int; mpatch : int; mfin : int }

(* The batch must mirror the model exactly: same length, same entries in
   the same (FIFO) order, and npatches equal to the summed patch lengths.
   Reclaimed entries must have actually reclaimed their block and fired
   their finalizer exactly once. *)
let check_mirror t model =
  Retired.length t = List.length model
  && Retired.npatches t = List.fold_left (fun a m -> a + m.mpatch) 0 model
  && List.for_all2
       (fun m i ->
         let e = Retired.get t i in
         e.Retired.blk == m.mblk
         && e.Retired.stamp = m.mstamp
         && List.length e.Retired.patches = m.mpatch
         && (m.mfin >= 0) = (e.Retired.free <> None))
       model
       (List.init (List.length model) Fun.id)

let retired_agrees ops =
  Alloc.reset ();
  Alloc.set_strict true;
  let t = Retired.create () in
  let aux = Retired.create () in
  let fired = Hashtbl.create 64 in
  let fin_seq = ref 0 in
  let model = ref [] in
  let ok = ref true in
  let expect b = if not b then ok := false in
  let reclaimed_set ms =
    (* every removed entry: block reclaimed + finalizer fired once *)
    List.iter
      (fun m ->
        expect (Block.is_reclaimed m.mblk);
        if m.mfin >= 0 then
          expect (Hashtbl.find_opt fired m.mfin = Some 1))
      ms
  in
  List.iter
    (fun op ->
      (match op with
      | Push (stamp, with_fin, npatch) ->
          let b = Alloc.block () in
          Alloc.retire b;
          let fin =
            if with_fin then begin
              let id = !fin_seq in
              incr fin_seq;
              Hashtbl.replace fired id 0;
              Some id
            end
            else None
          in
          let free =
            Option.map
              (fun id () ->
                Hashtbl.replace fired id (1 + Hashtbl.find fired id))
              fin
          in
          let patches = List.init npatch (fun _ -> Alloc.block ()) in
          (match (free, patches) with
          | None, [] -> Retired.push t ~stamp b
          | None, ps -> Retired.push t ~stamp ~patches:ps b
          | Some f, [] -> Retired.push t ~free:f ~stamp b
          | Some f, ps -> Retired.push t ~free:f ~stamp ~patches:ps b);
          model :=
            !model
            @ [
                {
                  mblk = b;
                  mstamp = stamp;
                  mpatch = npatch;
                  mfin = Option.value fin ~default:(-1);
                };
              ]
      | Reclaim_le k ->
          let gone, keep = List.partition (fun m -> m.mstamp <= k) !model in
          let freed =
            Retired.reclaim_where t (fun e -> e.Retired.stamp <= k)
          in
          expect (freed = List.length gone);
          reclaimed_set gone;
          model := keep
      | Reclaim_all ->
          let gone = !model in
          let freed = Retired.reclaim_where t (fun _ -> true) in
          expect (freed = List.length gone);
          reclaimed_set gone;
          model := []
      | Drain ->
          let es = Retired.drain t in
          expect (Retired.length t = 0 && Retired.npatches t = 0);
          expect (List.length es = List.length !model);
          List.iter2
            (fun e m ->
              expect (e.Retired.blk == m.mblk && e.Retired.stamp = m.mstamp))
            es !model;
          (* drained copies stay valid: push them back *)
          List.iter (fun e -> Retired.push_entry t e) es
      | Transfer ->
          Retired.transfer t ~into:aux;
          expect (Retired.length t = 0 && Retired.npatches t = 0);
          Retired.transfer aux ~into:t;
          expect (Retired.length aux = 0));
      expect (check_mirror t !model))
    ops;
  (* Drain down: everything left must reclaim cleanly exactly once. *)
  let gone = !model in
  expect (Retired.reclaim_where t (fun _ -> true) = List.length gone);
  reclaimed_set gone;
  expect (Retired.length t = 0 && Retired.npatches t = 0);
  (* No finalizer ever fired twice or spuriously. *)
  Hashtbl.iter (fun _ n -> expect (n = 0 || n = 1)) fired;
  !ok && Alloc.uaf_count () = 0

let retired_prop =
  Q.Test.make ~count:200 ~name:"Retired-array+model" ops_arb retired_agrees

(* ---------------- Idset vs Stdlib sort ---------------- *)

let ids_arb =
  Q.make
    ~print:Q.Print.(list int)
    Q.Gen.(list_size (int_range 0 300) (int_bound 100_000))

let idset_sort_mem =
  Q.Test.make ~count:300 ~name:"Idset-radix-sort+mem" ids_arb (fun ids ->
      let s = Idset.create () in
      List.iter (Idset.add s) ids;
      Idset.sort s;
      let sorted = List.sort compare ids in
      let ok = ref (Idset.length s = List.length ids) in
      List.iteri
        (fun i v ->
          (* probe order via mem of each sorted element and spot-check
             non-members around it *)
          if not (Idset.mem s v) then ok := false;
          if i = 0 && v > 0 && not (List.mem (v - 1) ids) then
            if Idset.mem s (v - 1) then ok := false)
        sorted;
      if Idset.mem s 100_001 then ok := false;
      !ok)

let idset_mem_range =
  Q.Test.make ~count:300 ~name:"Idset-mem-range"
    Q.(
      pair ids_arb
        (pair (Q.make Q.Gen.(int_bound 100_000)) (Q.make Q.Gen.(int_bound 100_000))))
    (fun (ids, (a, b)) ->
      let lo = min a b and hi = max a b in
      let s = Idset.create () in
      List.iter (Idset.add s) ids;
      Idset.sort s;
      Idset.mem_range s lo hi = List.exists (fun v -> lo <= v && v <= hi) ids)

(* Reuse across clear: a second fill of the same scratch set must behave
   like a fresh one (stale elements must not leak through). *)
let idset_reuse =
  Q.Test.make ~count:200 ~name:"Idset-clear-reuse" (Q.pair ids_arb ids_arb)
    (fun (first, second) ->
      let s = Idset.create () in
      List.iter (Idset.add s) first;
      Idset.sort s;
      Idset.clear s;
      List.iter (Idset.add s) second;
      Idset.sort s;
      List.for_all (Idset.mem s) second
      && Idset.length s = List.length second
      && List.for_all
           (fun v -> List.mem v second || not (Idset.mem s v))
           first)

let () =
  let to_alco = List.map (QCheck_alcotest.to_alcotest ~long:false) in
  Alcotest.run "retired"
    [
      ("retired-vs-model", to_alco [ retired_prop ]);
      ("idset", to_alco [ idset_sort_mem; idset_mem_range; idset_reuse ]);
    ]
