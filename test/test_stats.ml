(* The observability layer (DESIGN.md §7): histogram bucket geometry and
   percentile extraction, sharded counters, the tracer's ring buffers, the
   registry-exhaustion bound, and — the headline property — that a fiber
   run's trace and stats snapshot are a pure function of the seed. *)

module Stats = Hpbrcu_runtime.Stats
module Trace = Hpbrcu_runtime.Trace
module Sched = Hpbrcu_runtime.Sched
module Registry = Hpbrcu_schemes.Registry
module H = Stats.Histogram
module W = Hpbrcu_workload

(* ------------------------------------------------------------------ *)
(* Histogram bucket geometry                                           *)
(* ------------------------------------------------------------------ *)

(* Values below [sub] land in their own unit bucket: exact percentiles. *)
let test_buckets_exact_below_sub () =
  for v = 0 to H.sub - 1 do
    Alcotest.(check int) "identity bucket" v (H.bucket_of v);
    Alcotest.(check int) "exact lower bound" v (H.lower_bound v)
  done

(* lower_bound inverts bucket_of on every bucket boundary. *)
let test_bucket_roundtrip () =
  for i = 0 to H.nbuckets - 1 do
    Alcotest.(check int)
      (Printf.sprintf "bucket %d" i)
      i
      (H.bucket_of (H.lower_bound i))
  done

(* bucket_of is monotone and reporting a bucket's lower bound under-reads
   the true value by at most the advertised 12.5% relative error. *)
let test_bucket_error_bound () =
  let probe v =
    let b = H.bucket_of v in
    let lo = H.lower_bound b in
    Alcotest.(check bool) "lower_bound <= v" true (lo <= v);
    Alcotest.(check bool)
      (Printf.sprintf "error bound at %d" v)
      true
      (float_of_int (v - lo) <= (0.125 *. float_of_int v) +. 1e-9);
    if b + 1 < H.nbuckets then
      Alcotest.(check bool) "below next bucket" true (v < H.lower_bound (b + 1))
  in
  List.iter probe
    [ 0; 1; 15; 16; 17; 31; 32; 33; 100; 1000; 12345; (1 lsl 20) + 7; max_int / 2 ];
  (* Monotone across a dense range spanning several octaves. *)
  for v = 0 to 5000 do
    Alcotest.(check bool) "monotone" true (H.bucket_of v <= H.bucket_of (v + 1))
  done

(* ------------------------------------------------------------------ *)
(* Percentile extraction                                               *)
(* ------------------------------------------------------------------ *)

let test_percentiles_exact_small () =
  let h = H.make () in
  for v = 0 to 9 do
    for _ = 1 to 10 do
      H.record h v
    done
  done;
  let s = H.summary h in
  Alcotest.(check int) "count" 100 s.H.count;
  Alcotest.(check int) "sum" 450 s.H.sum;
  Alcotest.(check int) "p50" 4 s.H.p50;
  Alcotest.(check int) "p90" 8 s.H.p90;
  Alcotest.(check int) "p99" 9 s.H.p99;
  Alcotest.(check int) "max" 9 s.H.max

let test_percentiles_quantized () =
  let h = H.make () in
  H.record h 1000;
  let s = H.summary h in
  Alcotest.(check int) "count" 1 s.H.count;
  (* Percentiles report the bucket's lower bound; max is tracked exactly. *)
  Alcotest.(check int) "p50 = bucket floor" (H.lower_bound (H.bucket_of 1000)) s.H.p50;
  Alcotest.(check int) "p99 = p50 (one sample)" s.H.p50 s.H.p99;
  Alcotest.(check int) "max exact" 1000 s.H.max

let test_percentiles_edges () =
  let h = H.make () in
  Alcotest.(check bool) "empty summary" true (H.summary h = H.empty_summary);
  H.record h (-5);
  (* Negative samples clamp to 0 rather than corrupting the layout. *)
  let s = H.summary h in
  Alcotest.(check int) "clamped count" 1 s.H.count;
  Alcotest.(check int) "clamped p50" 0 s.H.p50;
  Alcotest.(check int) "clamped max" 0 s.H.max;
  H.reset h;
  Alcotest.(check bool) "reset" true (H.summary h = H.empty_summary)

(* ------------------------------------------------------------------ *)
(* Sharded counters                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter_shards_sum () =
  let c = Stats.Counter.make () in
  Stats.Counter.incr c;
  (* tid = -1: the outside-any-worker shard *)
  Sched.run
    (Sched.Fibers { seed = 3; switch_every = 1 })
    ~nthreads:4
    (fun _ ->
      for _ = 1 to 100 do
        Stats.Counter.incr c;
        Sched.yield ()
      done);
  Alcotest.(check int) "sum over shards" 401 (Stats.Counter.value c);
  Stats.Counter.add c 9;
  Alcotest.(check int) "add" 410 (Stats.Counter.value c);
  Stats.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Stats.Counter.value c)

(* ------------------------------------------------------------------ *)
(* Tracer ring buffers                                                 *)
(* ------------------------------------------------------------------ *)

let test_ring_wraparound () =
  Trace.enable ~capacity:8 ();
  for i = 0 to 19 do
    Trace.emit Trace.Retire i
  done;
  let recs = Trace.dump () in
  Alcotest.(check int) "kept = capacity" 8 (List.length recs);
  Alcotest.(check int) "dropped" 12 (Trace.dropped ());
  Alcotest.(check (list int))
    "the LAST events survive, in order"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun r -> r.Trace.arg) recs);
  List.iter
    (fun r -> Alcotest.(check int) "outside-worker tid" (-1) r.Trace.tid)
    recs;
  Trace.disable ();
  (* Disabled: emit is a no-op, the old dump stays readable. *)
  Trace.emit Trace.Retire 99;
  Alcotest.(check int) "no emit when disabled" 8 (List.length (Trace.dump ()));
  Alcotest.(check int) "no drop when disabled" 12 (Trace.dropped ())

let test_trace_enable_clears () =
  Trace.enable ~capacity:8 ();
  Trace.emit Trace.Rollback 0;
  Trace.enable ~capacity:8 ();
  Alcotest.(check int) "enable clears old rings" 0 (List.length (Trace.dump ()));
  Trace.disable ()

(* ------------------------------------------------------------------ *)
(* Registry exhaustion never moves the high-water mark                 *)
(* ------------------------------------------------------------------ *)

let test_shields_exhaustion () =
  let t = Registry.Shields.create () in
  let all =
    Array.init Registry.Shields.max_shields (fun _ -> Registry.Shields.alloc t)
  in
  let hwm () = Atomic.get t.Registry.Shields.hwm in
  Alcotest.(check int) "full" Registry.Shields.max_shields (hwm ());
  for _ = 1 to 3 do
    (try
       ignore (Registry.Shields.alloc t : Registry.Shields.shield);
       Alcotest.fail "alloc past capacity succeeded"
     with Failure _ -> ());
    (* The regression: a fetch_and_add here kept growing hwm on every
       failed alloc, silently masked by downstream clamps. *)
    Alcotest.(check int) "hwm untouched by failure" Registry.Shields.max_shields
      (hwm ())
  done;
  Registry.Shields.release all.(7);
  let s = Registry.Shields.alloc t in
  Alcotest.(check int) "recycled via free list" 7 s.Registry.Shields.idx;
  Alcotest.(check int) "hwm still untouched" Registry.Shields.max_shields (hwm ())

let test_participants_exhaustion () =
  let t = Registry.Participants.create () in
  let idxs =
    Array.init Registry.Participants.capacity (fun i ->
        Registry.Participants.add t i)
  in
  let hwm () = Atomic.get t.Registry.Participants.hwm in
  Alcotest.(check int) "full" Registry.Participants.capacity (hwm ());
  for _ = 1 to 3 do
    (try
       ignore (Registry.Participants.add t 0 : int);
       Alcotest.fail "add past capacity succeeded"
     with Failure _ -> ());
    Alcotest.(check int) "hwm untouched by failure"
      Registry.Participants.capacity (hwm ())
  done;
  Registry.Participants.remove t idxs.(5);
  Alcotest.(check int) "recycled via free list" idxs.(5)
    (Registry.Participants.add t 42);
  Alcotest.(check int) "hwm still untouched" Registry.Participants.capacity
    (hwm ())

(* ------------------------------------------------------------------ *)
(* Determinism: trace and snapshot are pure functions of the seed      *)
(* ------------------------------------------------------------------ *)

let run_traced () =
  (* Drain leftovers (deferred tasks, allocator counters) from whatever ran
     before, so both traced runs start from the same world state. *)
  Hpbrcu_schemes.Schemes.reset_all ();
  Hpbrcu_alloc.Alloc.reset ();
  Trace.enable ~capacity:(1 lsl 16) ();
  let cell =
    W.Spec.cell ~threads:4 ~key_range:128 ~prefill:64 ~workload:W.Spec.Read_write
      ~limit:(W.Spec.Ops 150) ~mode:(W.Spec.Fibers 17) ~seed:17 ()
  in
  let r =
    match W.Matrix.run_cell ~ds:Hpbrcu_core.Caps.HHSList ~scheme:"HP-BRCU" cell with
    | Some r -> r
    | None -> Alcotest.fail "HP-BRCU must support HHSList"
  in
  let t = Trace.dump () in
  Trace.disable ();
  (r, t)

let test_fiber_determinism () =
  let r1, t1 = run_traced () in
  let r2, t2 = run_traced () in
  Alcotest.(check bool) "trace is non-trivial" true (List.length t1 > 100);
  Alcotest.(check int) "same event count" (List.length t1) (List.length t2);
  Alcotest.(check bool) "byte-identical event logs" true (t1 = t2);
  Alcotest.(check int) "equal op counts" r1.W.Spec.total_ops r2.W.Spec.total_ops;
  Alcotest.(check bool) "equal scheme snapshots" true
    (r1.W.Spec.scheme = r2.W.Spec.scheme);
  Alcotest.(check bool) "equal latency summaries (tick clock)" true
    (r1.W.Spec.latency = r2.W.Spec.latency);
  Alcotest.(check string) "latency in ticks" "tick" r1.W.Spec.latency.W.Spec.unit_;
  (* The run exercised the machinery the snapshot reports on. *)
  Alcotest.(check bool) "traversals counted" true (r1.W.Spec.scheme.Stats.traverses > 0)

(* A different seed must give a different interleaving story. *)
let test_fiber_seed_sensitivity () =
  let _, t1 = run_traced () in
  Trace.enable ~capacity:(1 lsl 16) ();
  let cell =
    W.Spec.cell ~threads:4 ~key_range:128 ~prefill:64 ~workload:W.Spec.Read_write
      ~limit:(W.Spec.Ops 150) ~mode:(W.Spec.Fibers 18) ~seed:17 ()
  in
  ignore (W.Matrix.run_cell ~ds:Hpbrcu_core.Caps.HHSList ~scheme:"HP-BRCU" cell);
  let t2 = Trace.dump () in
  Trace.disable ();
  Alcotest.(check bool) "different seed, different trace" true (t1 <> t2)

let () =
  Alcotest.run "stats"
    [
      ( "histogram",
        [
          Alcotest.test_case "exact-below-sub" `Quick test_buckets_exact_below_sub;
          Alcotest.test_case "roundtrip" `Quick test_bucket_roundtrip;
          Alcotest.test_case "error-bound" `Quick test_bucket_error_bound;
          Alcotest.test_case "percentiles-exact" `Quick test_percentiles_exact_small;
          Alcotest.test_case "percentiles-quantized" `Quick test_percentiles_quantized;
          Alcotest.test_case "edges" `Quick test_percentiles_edges;
        ] );
      ("counter", [ Alcotest.test_case "shards-sum" `Quick test_counter_shards_sum ]);
      ( "trace",
        [
          Alcotest.test_case "ring-wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "enable-clears" `Quick test_trace_enable_clears;
        ] );
      ( "registry",
        [
          Alcotest.test_case "shields-exhaustion" `Quick test_shields_exhaustion;
          Alcotest.test_case "participants-exhaustion" `Quick
            test_participants_exhaustion;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "trace-replayable" `Quick test_fiber_determinism;
          Alcotest.test_case "seed-sensitivity" `Quick test_fiber_seed_sensitivity;
        ] );
    ]
