(* The observability layer (DESIGN.md §7): histogram bucket geometry and
   percentile extraction, sharded counters, the tracer's ring buffers, the
   registry-exhaustion bound, and — the headline property — that a fiber
   run's trace and stats snapshot are a pure function of the seed. *)

module Stats = Hpbrcu_runtime.Stats
module Trace = Hpbrcu_runtime.Trace
module Sched = Hpbrcu_runtime.Sched
module Registry = Hpbrcu_schemes.Registry
module H = Stats.Histogram
module W = Hpbrcu_workload

(* ------------------------------------------------------------------ *)
(* Histogram bucket geometry                                           *)
(* ------------------------------------------------------------------ *)

(* Values below [sub] land in their own unit bucket: exact percentiles. *)
let test_buckets_exact_below_sub () =
  for v = 0 to H.sub - 1 do
    Alcotest.(check int) "identity bucket" v (H.bucket_of v);
    Alcotest.(check int) "exact lower bound" v (H.lower_bound v)
  done

(* lower_bound inverts bucket_of on every bucket boundary. *)
let test_bucket_roundtrip () =
  for i = 0 to H.nbuckets - 1 do
    Alcotest.(check int)
      (Printf.sprintf "bucket %d" i)
      i
      (H.bucket_of (H.lower_bound i))
  done

(* bucket_of is monotone and reporting a bucket's lower bound under-reads
   the true value by at most the advertised 12.5% relative error. *)
let test_bucket_error_bound () =
  let probe v =
    let b = H.bucket_of v in
    let lo = H.lower_bound b in
    Alcotest.(check bool) "lower_bound <= v" true (lo <= v);
    Alcotest.(check bool)
      (Printf.sprintf "error bound at %d" v)
      true
      (float_of_int (v - lo) <= (0.125 *. float_of_int v) +. 1e-9);
    if b + 1 < H.nbuckets then
      Alcotest.(check bool) "below next bucket" true (v < H.lower_bound (b + 1))
  in
  List.iter probe
    [ 0; 1; 15; 16; 17; 31; 32; 33; 100; 1000; 12345; (1 lsl 20) + 7; max_int / 2 ];
  (* Monotone across a dense range spanning several octaves. *)
  for v = 0 to 5000 do
    Alcotest.(check bool) "monotone" true (H.bucket_of v <= H.bucket_of (v + 1))
  done

(* ------------------------------------------------------------------ *)
(* Percentile extraction                                               *)
(* ------------------------------------------------------------------ *)

let test_percentiles_exact_small () =
  let h = H.make () in
  for v = 0 to 9 do
    for _ = 1 to 10 do
      H.record h v
    done
  done;
  let s = H.summary h in
  Alcotest.(check int) "count" 100 s.H.count;
  Alcotest.(check int) "sum" 450 s.H.sum;
  Alcotest.(check int) "p50" 4 s.H.p50;
  Alcotest.(check int) "p90" 8 s.H.p90;
  Alcotest.(check int) "p99" 9 s.H.p99;
  Alcotest.(check int) "max" 9 s.H.max

let test_percentiles_quantized () =
  let h = H.make () in
  H.record h 1000;
  let s = H.summary h in
  Alcotest.(check int) "count" 1 s.H.count;
  (* Percentiles report the bucket's lower bound; max is tracked exactly. *)
  Alcotest.(check int) "p50 = bucket floor" (H.lower_bound (H.bucket_of 1000)) s.H.p50;
  Alcotest.(check int) "p99 = p50 (one sample)" s.H.p50 s.H.p99;
  Alcotest.(check int) "max exact" 1000 s.H.max

let test_percentiles_edges () =
  let h = H.make () in
  Alcotest.(check bool) "empty summary" true (H.summary h = H.empty_summary);
  H.record h (-5);
  (* Negative samples clamp to 0 rather than corrupting the layout. *)
  let s = H.summary h in
  Alcotest.(check int) "clamped count" 1 s.H.count;
  Alcotest.(check int) "clamped p50" 0 s.H.p50;
  Alcotest.(check int) "clamped max" 0 s.H.max;
  H.reset h;
  Alcotest.(check bool) "reset" true (H.summary h = H.empty_summary)

(* ------------------------------------------------------------------ *)
(* Sharded counters                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter_shards_sum () =
  let c = Stats.Counter.make () in
  Stats.Counter.incr c;
  (* tid = -1: the outside-any-worker shard *)
  Sched.run
    (Sched.Fibers { seed = 3; switch_every = 1 })
    ~nthreads:4
    (fun _ ->
      for _ = 1 to 100 do
        Stats.Counter.incr c;
        Sched.yield ()
      done);
  Alcotest.(check int) "sum over shards" 401 (Stats.Counter.value c);
  Stats.Counter.add c 9;
  Alcotest.(check int) "add" 410 (Stats.Counter.value c);
  Stats.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Stats.Counter.value c)

(* ------------------------------------------------------------------ *)
(* Tracer ring buffers                                                 *)
(* ------------------------------------------------------------------ *)

let test_ring_wraparound () =
  Trace.enable ~capacity:8 ();
  for i = 0 to 19 do
    Trace.emit Trace.Retire i
  done;
  let recs = Trace.dump () in
  Alcotest.(check int) "kept = capacity" 8 (List.length recs);
  Alcotest.(check int) "dropped" 12 (Trace.dropped ());
  Alcotest.(check (list int))
    "the LAST events survive, in order"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun r -> r.Trace.arg) recs);
  List.iter
    (fun r -> Alcotest.(check int) "outside-worker tid" (-1) r.Trace.tid)
    recs;
  Trace.disable ();
  (* Disabled: emit is a no-op, the old dump stays readable. *)
  Trace.emit Trace.Retire 99;
  Alcotest.(check int) "no emit when disabled" 8 (List.length (Trace.dump ()));
  Alcotest.(check int) "no drop when disabled" 12 (Trace.dropped ())

let test_trace_enable_clears () =
  Trace.enable ~capacity:8 ();
  Trace.emit Trace.Rollback 0;
  Trace.enable ~capacity:8 ();
  Alcotest.(check int) "enable clears old rings" 0 (List.length (Trace.dump ()));
  Trace.disable ()

(* ------------------------------------------------------------------ *)
(* Event-code table and decoder                                        *)
(* ------------------------------------------------------------------ *)

(* The code<->constructor tables are hand-maintained; this is the
   exhaustiveness check that keeps them honest when events are added. *)
let test_event_code_roundtrip () =
  Alcotest.(check int) "all_events covers every code" Trace.n_event_codes
    (List.length Trace.all_events);
  List.iteri
    (fun i ev ->
      Alcotest.(check int) "all_events is in code order" i (Trace.event_code ev);
      Alcotest.(check bool)
        (Printf.sprintf "decode(encode %d)" i)
        true
        (Trace.event_of_code (Trace.event_code ev) = ev))
    Trace.all_events;
  let names = List.map Trace.event_name Trace.all_events in
  Alcotest.(check int) "event names are distinct"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun bad ->
      try
        ignore (Trace.event_of_code bad : Trace.event);
        Alcotest.fail "event_of_code accepted an out-of-range code"
      with Invalid_argument _ -> ())
    [ -1; Trace.n_event_codes; Trace.n_event_codes + 7; max_int ]

(* ------------------------------------------------------------------ *)
(* Min/max gauges                                                      *)
(* ------------------------------------------------------------------ *)

let test_gauge () =
  let g = Stats.Gauge.make () in
  Alcotest.(check bool) "fresh gauge unobserved" false (Stats.Gauge.observed g);
  Alcotest.(check int) "unobserved max reads 0" 0 (Stats.Gauge.maximum g);
  Alcotest.(check int) "unobserved min reads 0" 0 (Stats.Gauge.minimum g);
  List.iter (Stats.Gauge.observe g) [ 5; 2; 9; 9; 3 ];
  Alcotest.(check bool) "observed" true (Stats.Gauge.observed g);
  Alcotest.(check int) "max watermark" 9 (Stats.Gauge.maximum g);
  Alcotest.(check int) "min watermark" 2 (Stats.Gauge.minimum g);
  Stats.Gauge.reset g;
  Alcotest.(check int) "reset clears" 0 (Stats.Gauge.maximum g);
  (* Snapshot merge takes the max of gauge fields (not the sum). *)
  let a = { Stats.empty with max_epoch_lag = 3; max_signals_inflight = 1 } in
  let b = { Stats.empty with max_epoch_lag = 7; max_signals_inflight = 0 } in
  let m = Stats.add a b in
  Alcotest.(check int) "add merges max_epoch_lag by max" 7 m.Stats.max_epoch_lag;
  Alcotest.(check int) "add merges inflight by max" 1
    m.Stats.max_signals_inflight;
  (* And the fields flow into the machine-readable form. *)
  let fields = Stats.to_fields ~keep_zeros:true m in
  Alcotest.(check bool) "max_epoch_lag in to_fields" true
    (List.mem_assoc "max_epoch_lag" fields);
  Alcotest.(check bool) "max_signals_inflight in to_fields" true
    (List.mem_assoc "max_signals_inflight" fields)

(* ------------------------------------------------------------------ *)
(* Spool sink                                                          *)
(* ------------------------------------------------------------------ *)

(* Non-lossy growth: more events than one chunk holds, nothing dropped,
   order preserved. *)
let test_spool_growth () =
  Trace.enable ~sink:Trace.Spool ();
  let n = (3 * Trace.chunk_records) + 5 in
  for i = 0 to n - 1 do
    Trace.emit2 Trace.Retire i (i * 2)
  done;
  let recs = Trace.dump () in
  Trace.disable ();
  Alcotest.(check int) "all events kept" n (List.length recs);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ());
  List.iteri
    (fun i r ->
      if i < 5 || i > n - 5 then begin
        Alcotest.(check int) "arg in order" i r.Trace.arg;
        Alcotest.(check int) "arg2 correlates" (i * 2) r.Trace.arg2
      end)
    recs

(* Bounded: past the per-thread record bound the spool counts but stops
   storing — the FIRST [capacity] events survive (vs the ring's last). *)
let test_spool_bound () =
  Trace.enable ~capacity:10 ~sink:Trace.Spool ();
  for i = 0 to 24 do
    Trace.emit Trace.Retire i
  done;
  let recs = Trace.dump () in
  Trace.disable ();
  Alcotest.(check int) "kept = bound" 10 (List.length recs);
  Alcotest.(check int) "dropped counted" 15 (Trace.dropped ());
  Alcotest.(check (list int))
    "the FIRST events survive"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.map (fun r -> r.Trace.arg) recs)

(* to_file/read_file invert each other. *)
let test_trace_file_roundtrip () =
  Trace.enable ~sink:Trace.Spool ();
  List.iteri
    (fun i ev -> Trace.emit2 ev i (1000 + i))
    Trace.all_events;
  let recs = Trace.dump () in
  Trace.disable ();
  let path = Filename.temp_file "smrbench" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.to_file path recs;
      let back = Trace.read_file path in
      Alcotest.(check bool) "read_file inverts to_file" true (recs = back))

(* ------------------------------------------------------------------ *)
(* Registry exhaustion never moves the high-water mark                 *)
(* ------------------------------------------------------------------ *)

let test_shields_exhaustion () =
  let t = Registry.Shields.create () in
  let all =
    Array.init Registry.Shields.max_shields (fun _ -> Registry.Shields.alloc t)
  in
  let hwm () = Atomic.get t.Registry.Shields.hwm in
  Alcotest.(check int) "full" Registry.Shields.max_shields (hwm ());
  for _ = 1 to 3 do
    (try
       ignore (Registry.Shields.alloc t : Registry.Shields.shield);
       Alcotest.fail "alloc past capacity succeeded"
     with Registry.Exhausted _ -> ());
    (* The regression: a fetch_and_add here kept growing hwm on every
       failed alloc, silently masked by downstream clamps. *)
    Alcotest.(check int) "hwm untouched by failure" Registry.Shields.max_shields
      (hwm ())
  done;
  Registry.Shields.release all.(7);
  let s = Registry.Shields.alloc t in
  Alcotest.(check int) "recycled via free list" 7 s.Registry.Shields.idx;
  Alcotest.(check int) "hwm still untouched" Registry.Shields.max_shields (hwm ())

let test_participants_exhaustion () =
  let t = Registry.Participants.create () in
  let idxs =
    Array.init Registry.Participants.capacity (fun i ->
        Registry.Participants.add t i)
  in
  let hwm () = Atomic.get t.Registry.Participants.hwm in
  Alcotest.(check int) "full" Registry.Participants.capacity (hwm ());
  for _ = 1 to 3 do
    (try
       ignore (Registry.Participants.add t 0 : int);
       Alcotest.fail "add past capacity succeeded"
     with Registry.Exhausted _ -> ());
    Alcotest.(check int) "hwm untouched by failure"
      Registry.Participants.capacity (hwm ())
  done;
  Registry.Participants.remove t idxs.(5);
  Alcotest.(check int) "recycled via free list" idxs.(5)
    (Registry.Participants.add t 42);
  Alcotest.(check int) "hwm still untouched" Registry.Participants.capacity
    (hwm ())

(* ------------------------------------------------------------------ *)
(* Determinism: trace and snapshot are pure functions of the seed      *)
(* ------------------------------------------------------------------ *)

let run_traced ?(sink = Trace.Ring) () =
  (* Drain leftovers (deferred tasks, allocator counters) from whatever ran
     before, so both traced runs start from the same world state. *)
  Hpbrcu_schemes.Schemes.reset_all ();
  Hpbrcu_alloc.Alloc.reset ();
  Trace.enable ~capacity:(1 lsl 16) ~sink ();
  let cell =
    W.Spec.cell ~threads:4 ~key_range:128 ~prefill:64 ~workload:W.Spec.Read_write
      ~limit:(W.Spec.Ops 150) ~mode:(W.Spec.Fibers 17) ~seed:17 ()
  in
  let r =
    match W.Matrix.run_cell ~ds:Hpbrcu_core.Caps.HHSList ~scheme:"HP-BRCU" cell with
    | Some r -> r
    | None -> Alcotest.fail "HP-BRCU must support HHSList"
  in
  let t = Trace.dump () in
  Trace.disable ();
  (r, t)

let test_fiber_determinism () =
  let r1, t1 = run_traced () in
  let r2, t2 = run_traced () in
  Alcotest.(check bool) "trace is non-trivial" true (List.length t1 > 100);
  Alcotest.(check int) "same event count" (List.length t1) (List.length t2);
  Alcotest.(check bool) "byte-identical event logs" true (t1 = t2);
  Alcotest.(check int) "equal op counts" r1.W.Spec.total_ops r2.W.Spec.total_ops;
  Alcotest.(check bool) "equal scheme snapshots" true
    (r1.W.Spec.scheme = r2.W.Spec.scheme);
  Alcotest.(check bool) "equal latency summaries (tick clock)" true
    (r1.W.Spec.latency = r2.W.Spec.latency);
  Alcotest.(check string) "latency in ticks" "tick" r1.W.Spec.latency.W.Spec.unit_;
  (* The run exercised the machinery the snapshot reports on. *)
  Alcotest.(check bool) "traversals counted" true (r1.W.Spec.scheme.Stats.traverses > 0)

(* The spooled form of the same guarantee: same seed, byte-identical
   on-disk trace AND identical analyze output (the whole derived summary,
   including percentile distributions, joins, and curves). *)
let test_spool_determinism () =
  let read_all path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let _, t1 = run_traced ~sink:Trace.Spool () in
  let _, t2 = run_traced ~sink:Trace.Spool () in
  Alcotest.(check bool) "spooled log is non-trivial" true
    (List.length t1 > 100);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ());
  let p1 = Filename.temp_file "smrbench1" ".trace" in
  let p2 = Filename.temp_file "smrbench2" ".trace" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove p1;
      Sys.remove p2)
    (fun () ->
      Trace.to_file p1 t1;
      Trace.to_file p2 t2;
      Alcotest.(check bool) "byte-identical spooled trace files" true
        (read_all p1 = read_all p2));
  let s1 = W.Analyze.of_records ~source:"probe" t1 in
  let s2 = W.Analyze.of_records ~source:"probe" t2 in
  Alcotest.(check bool) "identical analyze summaries" true (s1 = s2);
  (* The summary exercised the correlation machinery, not just counters. *)
  Alcotest.(check bool) "retire->reclaim joins found" true
    (s1.W.Analyze.ttr.H.count > 0);
  Alcotest.(check bool) "critical sections seen" true
    (s1.W.Analyze.cs.H.count > 0)

(* Perfetto export smoke: valid-looking Chrome trace JSON with span and
   metadata events. *)
let test_perfetto_export () =
  let _, t = run_traced ~sink:Trace.Spool () in
  let path = Filename.temp_file "smrbench" ".perfetto.json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.perfetto_to_file path t;
      let ic = open_in path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let contains sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "object start" true (s.[0] = '{');
      Alcotest.(check bool) "has traceEvents" true (contains "\"traceEvents\"");
      Alcotest.(check bool) "has span begins" true (contains "\"ph\":\"B\"");
      Alcotest.(check bool) "has span ends" true (contains "\"ph\":\"E\"");
      Alcotest.(check bool) "has thread metadata" true
        (contains "\"thread_name\""))

(* A different seed must give a different interleaving story. *)
let test_fiber_seed_sensitivity () =
  let _, t1 = run_traced () in
  Trace.enable ~capacity:(1 lsl 16) ();
  let cell =
    W.Spec.cell ~threads:4 ~key_range:128 ~prefill:64 ~workload:W.Spec.Read_write
      ~limit:(W.Spec.Ops 150) ~mode:(W.Spec.Fibers 18) ~seed:17 ()
  in
  ignore (W.Matrix.run_cell ~ds:Hpbrcu_core.Caps.HHSList ~scheme:"HP-BRCU" cell);
  let t2 = Trace.dump () in
  Trace.disable ();
  Alcotest.(check bool) "different seed, different trace" true (t1 <> t2)

let () =
  Alcotest.run "stats"
    [
      ( "histogram",
        [
          Alcotest.test_case "exact-below-sub" `Quick test_buckets_exact_below_sub;
          Alcotest.test_case "roundtrip" `Quick test_bucket_roundtrip;
          Alcotest.test_case "error-bound" `Quick test_bucket_error_bound;
          Alcotest.test_case "percentiles-exact" `Quick test_percentiles_exact_small;
          Alcotest.test_case "percentiles-quantized" `Quick test_percentiles_quantized;
          Alcotest.test_case "edges" `Quick test_percentiles_edges;
        ] );
      ("counter", [ Alcotest.test_case "shards-sum" `Quick test_counter_shards_sum ]);
      ("gauge", [ Alcotest.test_case "watermarks" `Quick test_gauge ]);
      ( "trace",
        [
          Alcotest.test_case "ring-wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "enable-clears" `Quick test_trace_enable_clears;
          Alcotest.test_case "event-code-roundtrip" `Quick
            test_event_code_roundtrip;
          Alcotest.test_case "spool-growth" `Quick test_spool_growth;
          Alcotest.test_case "spool-bound" `Quick test_spool_bound;
          Alcotest.test_case "file-roundtrip" `Quick test_trace_file_roundtrip;
        ] );
      ( "registry",
        [
          Alcotest.test_case "shields-exhaustion" `Quick test_shields_exhaustion;
          Alcotest.test_case "participants-exhaustion" `Quick
            test_participants_exhaustion;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "trace-replayable" `Quick test_fiber_determinism;
          Alcotest.test_case "spool-byte-identical" `Quick
            test_spool_determinism;
          Alcotest.test_case "perfetto-export" `Quick test_perfetto_export;
          Alcotest.test_case "seed-sensitivity" `Quick test_fiber_seed_sensitivity;
        ] );
    ]
